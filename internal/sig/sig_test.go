package sig

import (
	"strings"
	"testing"
)

// Test graphs.
func lineGraph() *Graph {
	// 0 -> 1 -> 2 (exit)
	return &Graph{Succs: [][]BlockID{{1}, {2}, {}}}
}

func diamondGraph() *Graph {
	// 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 exit. Fan-in at 3.
	return &Graph{Succs: [][]BlockID{{1, 2}, {3}, {3}, {}}}
}

func loopGraph() *Graph {
	// 0 -> 1; 1 -> {1, 2}; 2 exit. Self-loop at 1.
	return &Graph{Succs: [][]BlockID{{1}, {1, 2}, {}}}
}

func nestedGraph() *Graph {
	// 0 -> 1; 1 -> 2; 2 -> {1, 3}; 3 -> {0, 4}; 4 exit.
	return &Graph{Succs: [][]BlockID{{1}, {2}, {1, 3}, {0, 4}, {}}}
}

func allGraphs() map[string]*Graph {
	return map[string]*Graph{
		"line":    lineGraph(),
		"diamond": diamondGraph(),
		"loop":    loopGraph(),
		"nested":  nestedGraph(),
	}
}

func TestSplit(t *testing.T) {
	sg := Split(diamondGraph())
	if len(sg.Nodes) != 8 {
		t.Fatalf("nodes = %d, want 8", len(sg.Nodes))
	}
	for b := BlockID(0); b < 4; b++ {
		h, tl := sg.Nodes[sg.Head(b)], sg.Nodes[sg.Tail(b)]
		if !h.IsHead || tl.IsHead {
			t.Fatalf("block %d head/tail roles wrong", b)
		}
		if len(h.Succs) != 1 || h.Succs[0] != sg.Tail(b) {
			t.Errorf("head of %d must fall through to its tail, got %v", b, h.Succs)
		}
	}
	// Tail of 0 targets the heads of 1 and 2.
	t0 := sg.Nodes[sg.Tail(0)]
	if len(t0.Succs) != 2 || t0.Succs[0] != sg.Head(1) || t0.Succs[1] != sg.Head(2) {
		t.Errorf("tail(0) succs = %v", t0.Succs)
	}
}

func TestGraphValidate(t *testing.T) {
	bad := &Graph{Succs: [][]BlockID{{5}}}
	if bad.Validate() == nil {
		t.Error("out-of-range successor should fail validation")
	}
	if lineGraph().Validate() != nil {
		t.Error("line graph should validate")
	}
}

// TestEdgCFSatisfiesBothConditions re-establishes the paper's Claim 1
// mechanically: EdgCF detects any single control-flow error (sufficient)
// with no false positives (necessary), on every test graph.
func TestEdgCFSatisfiesBothConditions(t *testing.T) {
	for name, g := range allGraphs() {
		res := Verify(g, EdgCF{})
		if !res.Necessary {
			t.Errorf("%s: EdgCF false positive: %v", name, res.FalsePositive)
		}
		if !res.Sufficient {
			t.Errorf("%s: EdgCF false negative: %v", name, res.FalseNegative)
		}
		if res.StatesExplored == 0 {
			t.Errorf("%s: no states explored", name)
		}
	}
}

// TestXorFormEquivalent: the paper's formula (4) xor form and the x-y+z
// implementation form verify identically (Section 4.4).
func TestXorFormEquivalent(t *testing.T) {
	for name, g := range allGraphs() {
		res := Verify(g, EdgCFXor{})
		if !res.Sufficient || !res.Necessary {
			t.Errorf("%s: EdgCF-xor sufficient=%v necessary=%v", name, res.Sufficient, res.Necessary)
		}
	}
}

// TestDoubleErrorsCanMask documents the boundary of the paper's guarantee:
// with TWO control-flow errors the telescoping algebra can cancel. Build
// the canceling pair by hand: an error diverts B1t's exit from B2h to B3h,
// and a second error diverts B3t's exit from B4h... back onto the path
// with the inverse delta. The accumulated signature returns to the correct
// value and every later check passes.
func TestDoubleErrorsCanMask(t *testing.T) {
	// 0 -> 1; 1 -> 2; 2 -> 3; 3 exit. Errors: at tail(0) exit toward
	// head(1), land on head(2) (delta = sig1 - sig2); then at tail(2) exit
	// toward head(3), land on... we need the inverse delta: an error from
	// logical head(3) to physical head... choose landing so the deltas
	// cancel: second error with logical T2 and physical P2 satisfying
	// (T1 - P1) + (T2 - P2) = 0.
	g := &Graph{Succs: [][]BlockID{{1}, {2}, {3}, {}}}
	sg := Split(g)
	e := EdgCF{}
	s := e.Init(sg)

	step := func(n, logical int) {
		var ok bool
		s, ok = e.Enter(sg, s, n)
		if !ok {
			t.Fatalf("unexpected detection at node %d", n)
		}
		s = e.Gen(sg, s, n, logical)
	}
	// Clean prefix: 0h -> 0t.
	step(sg.Head(0), sg.Tail(0))
	// Error 1: tail(0) generates toward head(1) but lands on head(2).
	step(sg.Tail(0), sg.Head(1))
	// Landing on head(2): its check-free head runs, then its tail check
	// FAILS... unless a second error intervenes before the next check.
	// head(2) has no check; its exit generates toward tail(2).
	var ok bool
	s, ok = e.Enter(sg, s, sg.Head(2))
	if !ok {
		t.Fatal("heads carry no checks")
	}
	s = e.Gen(sg, s, sg.Head(2), sg.Tail(2))
	// Error 2 (inside the instrumented head->tail region is excluded by
	// the model, so this "second fault" models a further branch error):
	// the delta needed to cancel is sig(B1h) - sig(B2h); land accordingly.
	// Accumulated G = correct + (sig1 - sig2); check at tail(2) expects 0
	// after head(2) subtracted sig2... compute directly:
	// The first error left G short by (T1 - P1) = sig(B1h) - sig(B2h); the
	// inverse correction is sig(B2h) - sig(B1h).
	delta := sigOf(sg.Nodes[sg.Head(2)]) - sigOf(sg.Nodes[sg.Head(1)])
	if delta == 0 {
		t.Fatal("degenerate graph")
	}
	// Without correction, the next check must fire (single-error case).
	if _, ok := e.Enter(sg, s, sg.Tail(2)); ok {
		t.Fatal("single error escaped EdgCF — contradiction with Claim 1")
	}
	// A second fault that adds the inverse delta re-aligns the signature:
	// this is exactly why the paper (and this reproduction) restrict the
	// guarantee to single errors.
	s.G += delta
	if _, ok := e.Enter(sg, s, sg.Tail(2)); !ok {
		t.Fatal("canceling double error should mask")
	}
}

func TestRCFSatisfiesBothConditions(t *testing.T) {
	for name, g := range allGraphs() {
		res := Verify(g, RCF{})
		if !res.Sufficient || !res.Necessary {
			t.Errorf("%s: RCF sufficient=%v necessary=%v", name, res.Sufficient, res.Necessary)
		}
	}
}

// TestECFMissesCategoryC: ECF satisfies the necessary condition but fails
// the sufficient one — its witness is always a jump to the middle of the
// same block (category C), the exact gap the paper identifies.
func TestECFMissesCategoryC(t *testing.T) {
	for name, g := range allGraphs() {
		res := Verify(g, ECF{})
		if !res.Necessary {
			t.Errorf("%s: ECF false positive: %v", name, res.FalsePositive)
		}
		if res.Sufficient {
			t.Errorf("%s: ECF should miss category C errors", name)
		}
	}
	// The witness on the line graph must involve landing on the same tail.
	res := Verify(lineGraph(), ECF{})
	found := false
	for _, ev := range res.FalseNegative {
		if strings.Contains(ev, "ERROR") && strings.Contains(ev, "lands on B") {
			found = true
		}
	}
	if !found {
		t.Errorf("no error event in witness: %v", res.FalseNegative)
	}
}

func TestCFCSSMissesErrors(t *testing.T) {
	for name, g := range allGraphs() {
		res := Verify(g, NewCFCSS(g))
		if !res.Necessary {
			t.Errorf("%s: CFCSS false positive: %v", name, res.FalsePositive)
		}
		if res.Sufficient {
			t.Errorf("%s: CFCSS should fail the sufficient condition", name)
		}
	}
}

// TestCFCSSMissesMistakenBranch builds the specific category-A scenario:
// a conditional block whose two successors must be distinguished. CFCSS
// successors cannot tell whether the last branch was mistaken.
func TestCFCSSMissesMistakenBranch(t *testing.T) {
	g := diamondGraph()
	c := NewCFCSS(g)
	sg := Split(g)
	// Clean state after tail(0) exit toward head(1).
	s := c.Init(sg)
	s, ok := c.Enter(sg, s, sg.Head(0))
	if !ok {
		t.Fatal("entry check failed")
	}
	s = c.Gen(sg, s, sg.Head(0), sg.Tail(0))
	s, _ = c.Enter(sg, s, sg.Tail(0))
	s = c.Gen(sg, s, sg.Tail(0), sg.Head(1)) // logical: block 1
	// Error: physically lands on head(2) (mistaken branch).
	_, ok = c.Enter(sg, s, sg.Head(2))
	if !ok {
		t.Error("CFCSS detected a mistaken branch; it must not be able to")
	}
}

// TestCFCSSAliasing: fan-in forces predecessors 1 and 2 to share a
// signature, so a category-D error jumping between them is invisible.
func TestCFCSSAliasing(t *testing.T) {
	g := diamondGraph()
	c := NewCFCSS(g)
	if c.sigs[1] != c.sigs[2] {
		t.Fatalf("fan-in predecessors must alias: sigs = %v", c.sigs)
	}
	if c.sigs[0] == c.sigs[1] || c.sigs[0] == c.sigs[3] {
		t.Errorf("unrelated blocks should not alias: %v", c.sigs)
	}
}

func TestECCAMissesErrors(t *testing.T) {
	for name, g := range allGraphs() {
		res := Verify(g, NewECCA(g))
		if !res.Necessary {
			t.Errorf("%s: ECCA false positive: %v", name, res.FalsePositive)
		}
		if res.Sufficient {
			t.Errorf("%s: ECCA should fail the sufficient condition", name)
		}
	}
}

// TestECCADetectsIllegalJump: ECCA does catch a jump to the beginning of a
// block that is not a successor (category D with unrelated blocks).
func TestECCADetectsIllegalJump(t *testing.T) {
	g := lineGraph()
	e := NewECCA(g)
	sg := Split(g)
	s := e.Init(sg)
	s, _ = e.Enter(sg, s, sg.Head(0))
	s = e.Gen(sg, s, sg.Head(0), sg.Tail(0))
	s, _ = e.Enter(sg, s, sg.Tail(0))
	s = e.Gen(sg, s, sg.Tail(0), sg.Head(1)) // ends block 0, id = sig(0)
	// Error lands on head(2): block 2's only legal predecessor is 1.
	if _, ok := e.Enter(sg, s, sg.Head(2)); ok {
		t.Error("ECCA must detect a jump to a non-successor block start")
	}
}

// TestNullSchemeFailsSufficient validates the verifier itself: a scheme
// that never checks anything must fail the sufficient condition and hold
// the necessary one.
func TestNullSchemeFailsSufficient(t *testing.T) {
	for name, g := range allGraphs() {
		res := Verify(g, NullScheme{})
		if !res.Necessary {
			t.Errorf("%s: null scheme cannot raise false positives", name)
		}
		if res.Sufficient {
			t.Errorf("%s: null scheme cannot detect anything", name)
		}
	}
}

// TestEdgCFAlgebra checks formula (4) of the paper directly:
// GEN_SIG(x,y,z) = x - y + z telescopes so the signature equals the
// current node's representation exactly on error-free paths.
func TestEdgCFAlgebra(t *testing.T) {
	g := nestedGraph()
	sg := Split(g)
	e := EdgCF{}
	s := e.Init(sg)
	// Walk a clean path: 0h 0t 1h 1t 2h 2t 1h 1t 2h 2t 3h 3t 4h 4t.
	path := []int{
		sg.Head(0), sg.Tail(0), sg.Head(1), sg.Tail(1), sg.Head(2), sg.Tail(2),
		sg.Head(1), sg.Tail(1), sg.Head(2), sg.Tail(2), sg.Head(3), sg.Tail(3),
		sg.Head(4), sg.Tail(4),
	}
	for i, n := range path {
		var ok bool
		s, ok = e.Enter(sg, s, n)
		if !ok {
			t.Fatalf("step %d: clean check failed at %d", i, n)
		}
		if s.G != sigOf(sg.Nodes[n]) {
			t.Fatalf("step %d: signature %d != repr %d", i, s.G, sigOf(sg.Nodes[n]))
		}
		if i+1 < len(path) {
			s = e.Gen(sg, s, n, path[i+1])
		}
	}
}

// TestSingleErrorDeltaNonzero is the heart of the paper's proof: after one
// error from logical target T to physical target B, the accumulated
// signature differs from the correct one by repr(T) - repr(B), which is
// nonzero because logical targets are always heads with unique nonzero
// representations.
func TestSingleErrorDeltaNonzero(t *testing.T) {
	g := nestedGraph()
	sg := Split(g)
	for li := range sg.Nodes {
		if !sg.Nodes[li].IsHead {
			continue // logical targets are heads
		}
		for pi := range sg.Nodes {
			if pi == li {
				continue
			}
			if sigOf(sg.Nodes[li])-sigOf(sg.Nodes[pi]) == 0 {
				t.Errorf("repr collision: logical %d physical %d", li, pi)
			}
		}
	}
}

func TestVerifyPanicsOnBadGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Verify should panic on invalid graph")
		}
	}()
	Verify(&Graph{Succs: [][]BlockID{{9}}}, EdgCF{})
}
