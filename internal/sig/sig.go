// Package sig implements the formal control-flow checking framework of
// Section 4 of the paper. Programs are abstracted to graphs of basic blocks,
// each split into a head and a tail node (Figure 10); a checking scheme is a
// pair of GEN_SIG / CHECK_SIG functions threaded along the execution path.
//
// The package provides an exhaustive model checker that explores every
// execution path with at most one control-flow error and decides whether a
// scheme satisfies the paper's
//
//   - sufficient condition — every single control-flow error is eventually
//     detected by some CHECK_SIG (no false negatives), and
//   - necessary condition — error-free executions never fail a check
//     (no false positives).
//
// The paper proves EdgCF satisfies both and observes that CFCSS, ECCA and
// ECF satisfy only the necessary condition; the tests in this package
// re-derive those results mechanically, with concrete counterexample paths.
package sig

import "fmt"

// BlockID identifies a basic block in the abstract program.
type BlockID int

// Graph is an abstract control-flow graph over whole blocks. Entry must be
// block 0. Blocks with no successors are exit blocks.
type Graph struct {
	Succs [][]BlockID
}

// NumBlocks returns the number of blocks.
func (g *Graph) NumBlocks() int { return len(g.Succs) }

// Validate checks structural sanity.
func (g *Graph) Validate() error {
	for b, ss := range g.Succs {
		for _, s := range ss {
			if int(s) < 0 || int(s) >= len(g.Succs) {
				return fmt.Errorf("block %d: successor %d out of range", b, s)
			}
		}
	}
	return nil
}

// Node is one element of the split graph: the head or the tail of a block.
// Per Section 4.1, the head contains no original instructions and falls
// through to the tail; control-flow errors never occur on that fall-through
// edge, so every logical branch target is a head node, while a physical
// (erroneous) target may be any node — landing on a tail models a jump to
// the middle of the block.
type Node struct {
	ID     int
	Block  BlockID
	IsHead bool
	// Succs are the logical successors: for a head, exactly the tail of the
	// same block; for a tail, the heads of the block's successors.
	Succs []int
}

// SplitGraph is the head/tail-split form of a Graph.
type SplitGraph struct {
	Nodes []Node
	Entry int // head node of block 0
}

// Split builds the split graph: node 2b is the head of block b, node 2b+1
// its tail.
func Split(g *Graph) *SplitGraph {
	n := g.NumBlocks()
	sg := &SplitGraph{Nodes: make([]Node, 2*n), Entry: 0}
	for b := 0; b < n; b++ {
		head := &sg.Nodes[2*b]
		tail := &sg.Nodes[2*b+1]
		*head = Node{ID: 2 * b, Block: BlockID(b), IsHead: true, Succs: []int{2*b + 1}}
		*tail = Node{ID: 2*b + 1, Block: BlockID(b)}
		for _, s := range g.Succs[b] {
			tail.Succs = append(tail.Succs, 2*int(s))
		}
	}
	return sg
}

// Head returns the head node id of block b.
func (sg *SplitGraph) Head(b BlockID) int { return 2 * int(b) }

// Tail returns the tail node id of block b.
func (sg *SplitGraph) Tail(b BlockID) int { return 2*int(b) + 1 }

// State is the signature state a scheme threads along the path. Two words
// cover every scheme in the paper: G is the primary signature register
// (PC'), D is the secondary one (RTS for ECF, the run-time adjusting value
// for CFCSS fan-in).
type State struct {
	G, D uint64
}

// Scheme is one signature-monitoring technique expressed in the formal
// framework: CHECK_SIG at node entries, GEN_SIG at node exits.
type Scheme interface {
	// Name identifies the scheme.
	Name() string
	// Init returns the initial state on program entry (S0 = B0).
	Init(sg *SplitGraph) State
	// HasEntryCheck reports whether node n carries entry instrumentation
	// (CHECK_SIG and/or an entry update). A control-flow error landing past
	// it (Assumption 1 treats the instrumented code as atomic, so the error
	// lands either before or after all of it) skips it entirely.
	HasEntryCheck(sg *SplitGraph, n int) bool
	// Enter executes the entry instrumentation of node n: signature
	// updates followed by CHECK_SIG. ok=false means "error reported".
	Enter(sg *SplitGraph, s State, n int) (next State, ok bool)
	// Gen evaluates GEN_SIG at the exit of node n toward the logical
	// target. The logical target is always a head node (branches target
	// block beginnings); Gen runs regardless of where the physical branch
	// actually lands.
	Gen(sg *SplitGraph, s State, n, logicalTarget int) State
}

// sigOf returns the unique nonzero signature of a head node and 0 for tail
// nodes, the representation used in the paper's proof of Claim 1.
func sigOf(n Node) uint64 {
	if n.IsHead {
		// 1-based so no head shares the tail representation 0.
		return uint64(n.Block) + 1
	}
	return 0
}

// blockSig returns a unique per-block signature (for schemes that do not
// distinguish heads and tails).
func blockSig(b BlockID) uint64 { return uint64(b) + 1 }
