package sig

import (
	"fmt"

	"repro/internal/obs"
)

// Result reports whether a scheme satisfies the paper's correctness
// conditions on a given graph.
type Result struct {
	Scheme string
	// Sufficient: every single control-flow error that reaches at least one
	// subsequent CHECK_SIG is detected (no false negatives).
	Sufficient bool
	// Necessary: error-free executions never fail a check (no false
	// positives).
	Necessary bool
	// FalseNegative is a witness path for a missed error (nil when
	// Sufficient). Events are human-readable.
	FalseNegative []string
	// FalsePositive is a witness path for a spurious report (nil when
	// Necessary).
	FalsePositive []string
	// StatesExplored counts distinct (node, state) pairs visited.
	StatesExplored int
}

// Verify exhaustively model-checks the scheme against every execution of
// the graph containing at most one control-flow error. Errors occur only at
// tail-block exits (Section 4.1: the head→tail fall-through cannot err) and
// may land on any node; landing "past" a node's entry instrumentation
// (Assumption 1 makes it atomic) is modeled by the skip variant. The
// exploration memoizes on (node, state), so it terminates for any scheme
// whose state space is finite on the given graph.
func Verify(g *Graph, sch Scheme) Result {
	return VerifyObs(g, sch, nil, nil)
}

// VerifyObs is Verify with observability: every CHECK_SIG the model
// checker evaluates emits a check-pass/check-fail event to tr, and the
// exploration totals (states explored, checks evaluated, the verdict)
// are published to reg, labeled by scheme. Both may be nil.
func VerifyObs(g *Graph, sch Scheme, tr *obs.Tracer, reg *obs.Registry) Result {
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("sig.Verify: %v", err))
	}
	v := &verifier{
		sg:         Split(g),
		sch:        sch,
		tr:         tr,
		cleanSeen:  map[cleanKey]bool{},
		escapeMemo: map[escKey]escVal{},
	}
	res := Result{Scheme: sch.Name(), Sufficient: true, Necessary: true}
	v.res = &res
	v.exploreClean(v.sg.Entry, sch.Init(v.sg), []string{fmt.Sprintf("enter %s", v.nodeName(v.sg.Entry))})
	res.StatesExplored = len(v.cleanSeen) + len(v.escapeMemo)
	if reg != nil {
		l := fmt.Sprintf("{scheme=%q}", sch.Name())
		reg.Counter("sig_states_explored_total" + l).Add(uint64(res.StatesExplored))
		reg.Counter("sig_checks_passed_total" + l).Add(v.checksPassed)
		reg.Counter("sig_checks_failed_total" + l).Add(v.checksFailed)
		reg.Gauge("sig_sufficient" + l).Set(boolGauge(res.Sufficient))
		reg.Gauge("sig_necessary" + l).Set(boolGauge(res.Necessary))
	}
	return res
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

type cleanKey struct {
	n int
	s State
}

type escKey struct {
	n        int
	s        State
	runEnter bool
}

type escVal struct {
	escapes bool
	// withCheck marks escapes on which at least one CHECK_SIG executed
	// (and passed) after the error. Assumption 2 of the paper admits only
	// errors that finally reach a CHECK_SIG, so check-free escapes do not
	// count against the sufficient condition.
	withCheck bool
	trace     []string
}

type verifier struct {
	sg         *SplitGraph
	sch        Scheme
	res        *Result
	tr         *obs.Tracer
	cleanSeen  map[cleanKey]bool
	escapeMemo map[escKey]escVal
	escStack   map[escKey]bool

	checksPassed uint64
	checksFailed uint64
}

// noteCheck records one CHECK_SIG evaluation at node n (called only for
// nodes that carry an entry check).
func (v *verifier) noteCheck(n int, pass bool) {
	kind := obs.EvCheckPass
	if pass {
		v.checksPassed++
	} else {
		v.checksFailed++
		kind = obs.EvCheckFail
	}
	v.tr.Emit(obs.Event{Kind: kind, Detail: v.nodeName(n)})
}

func (v *verifier) nodeName(n int) string {
	node := v.sg.Nodes[n]
	part := "t"
	if node.IsHead {
		part = "h"
	}
	return fmt.Sprintf("B%d%s", node.Block, part)
}

// exploreClean walks all error-free executions, firing checks, and at every
// tail exit enumerates all single-error deviations.
func (v *verifier) exploreClean(n int, s State, path []string) {
	key := cleanKey{n, s}
	if v.cleanSeen[key] {
		return
	}
	v.cleanSeen[key] = true

	st, ok := v.sch.Enter(v.sg, s, n)
	if v.sch.HasEntryCheck(v.sg, n) {
		v.noteCheck(n, ok)
	}
	if !ok {
		if v.res.Necessary {
			v.res.Necessary = false
			v.res.FalsePositive = append(append([]string{}, path...),
				fmt.Sprintf("CHECK_SIG fails at %s on clean path", v.nodeName(n)))
		}
		return
	}
	node := v.sg.Nodes[n]
	for _, logical := range node.Succs {
		gen := v.sch.Gen(v.sg, st, n, logical)
		// Clean continuation.
		v.exploreClean(logical, gen, append(append([]string{}, path...),
			fmt.Sprintf("%s -> %s", v.nodeName(n), v.nodeName(logical))))
		// Single-error deviations: only tail exits can err.
		if node.IsHead {
			continue
		}
		if v.res.Sufficient {
			v.tryErrors(n, gen, logical, path)
		}
	}
}

// tryErrors enumerates every physical landing site for an error at the exit
// of tail n whose logical target was logical, with GEN_SIG already applied
// (the instrumentation ran; the branch went astray).
func (v *verifier) tryErrors(n int, gen State, logical int, path []string) {
	for p := range v.sg.Nodes {
		for _, skip := range [...]bool{false, true} {
			if skip && !v.sch.HasEntryCheck(v.sg, p) {
				continue // nothing to skip
			}
			if p == logical && !skip {
				continue // not an error: physical == logical
			}
			v.escStack = map[escKey]bool{}
			if val := v.escapes(p, gen, !skip); val.escapes && val.withCheck {
				v.res.Sufficient = false
				ev := fmt.Sprintf("ERROR: %s exits toward %s but lands on %s (skip=%v)",
					v.nodeName(n), v.nodeName(logical), v.nodeName(p), skip)
				v.res.FalseNegative = append(append(append([]string{}, path...), ev), val.trace...)
				return
			}
		}
	}
}

// escapes reports whether execution starting at node n with state s (and
// runEnter telling whether n's entry instrumentation executes) can continue
// forever or reach program exit without any CHECK_SIG failing. Detection on
// *every* path means the error cannot escape; a data-dependent branch that
// avoids detection on one path is enough to escape.
func (v *verifier) escapes(n int, s State, runEnter bool) escVal {
	key := escKey{n, s, runEnter}
	if val, done := v.escapeMemo[key]; done {
		return val
	}
	if v.escStack[key] {
		// Cycle with no detection: the error survives forever (e.g. ECF's
		// category-C loop). Checks inside the cycle passed, so Assumption 2
		// is satisfied.
		return escVal{escapes: true, trace: []string{fmt.Sprintf("cycle at %s with stable wrong state", v.nodeName(n))}}
	}
	v.escStack[key] = true
	defer delete(v.escStack, key)

	st := s
	ranCheck := false
	if runEnter {
		ranCheck = v.sch.HasEntryCheck(v.sg, n)
		var ok bool
		st, ok = v.sch.Enter(v.sg, s, n)
		if ranCheck {
			v.noteCheck(n, ok)
		}
		if !ok {
			val := escVal{escapes: false}
			v.escapeMemo[key] = val
			return val
		}
	}
	node := v.sg.Nodes[n]
	if len(node.Succs) == 0 {
		// Reached program exit without a failing check.
		val := escVal{
			escapes:   true,
			withCheck: ranCheck,
			trace:     []string{fmt.Sprintf("exit at %s undetected", v.nodeName(n))},
		}
		v.escapeMemo[key] = val
		return val
	}
	// Prefer an escape on which a check executed (the only kind that counts
	// per Assumption 2); fall back to reporting a check-free escape.
	var fallback *escVal
	for _, logical := range node.Succs {
		gen := v.sch.Gen(v.sg, st, n, logical)
		if val := v.escapes(logical, gen, true); val.escapes {
			out := escVal{
				escapes:   true,
				withCheck: ranCheck || val.withCheck,
				trace:     append([]string{fmt.Sprintf("%s -> %s", v.nodeName(n), v.nodeName(logical))}, val.trace...),
			}
			if out.withCheck {
				// A cycle found below depends only on (node, state), which
				// is part of the key; memoizing is sound.
				v.escapeMemo[key] = out
				return out
			}
			fallback = &out
		}
	}
	if fallback != nil {
		// A check-free escape may be an artifact of a live stack-cycle hit
		// whose checks sit "behind" this frame; such results are context
		// dependent, so they must not be memoized. (escapes=false results
		// are always pure — stack hits only ever return true — and
		// withCheck=true results carry a genuine witness; both are sound
		// to cache.)
		return *fallback
	}
	val := escVal{escapes: false}
	v.escapeMemo[key] = val
	return val
}
