// Package cli binds the execution-surface flags shared by every cmd/
// tool: the observability pair (-trace, -metrics) plus the campaign knobs
// (-workers, -ckpt-interval) that core.Options carries. Binding them in
// one place keeps the six CLIs and cfc-serve presenting an identical
// surface, and Options() hands the parsed result straight to any campaign
// entry point that embeds core.Options.
package cli

import (
	"flag"

	"repro/internal/core"
	"repro/internal/obs"
)

// App is the shared CLI surface. Zero value is ready to bind; set Workers
// or CkptInterval first to change a tool's flag defaults (cfc-inject
// defaults -ckpt-interval to -1, everything else to 0).
//
// Usage mirrors obs.CLI, which App embeds: BindFlags before flag.Parse,
// Open after it, Close on the way out.
type App struct {
	obs.CLI

	// Workers is the parsed -workers value (0 = GOMAXPROCS).
	Workers int
	// CkptInterval is the parsed -ckpt-interval value (0 full replay,
	// -1 auto-sized checkpoints, >0 explicit step interval).
	CkptInterval int64
}

// BindFlags registers -trace, -metrics, -workers and -ckpt-interval on fs,
// using the current field values as defaults.
func (a *App) BindFlags(fs *flag.FlagSet) {
	a.CLI.BindFlags(fs)
	fs.IntVar(&a.Workers, "workers", a.Workers, "worker goroutines (0 = GOMAXPROCS)")
	fs.Int64Var(&a.CkptInterval, "ckpt-interval", a.CkptInterval,
		"checkpoint interval in steps (-1 auto, 0 full replay)")
}

// Options returns the parsed execution surface. Call after Open: the
// tracer and registry are nil until then.
func (a *App) Options() core.Options {
	return core.Options{
		Trace:        a.Tracer(),
		Metrics:      a.Registry(),
		Workers:      a.Workers,
		CkptInterval: a.CkptInterval,
	}
}
