// Package cli binds the execution-surface flags shared by every cmd/
// tool: the observability set (-trace, -metrics, -progress, -flight,
// -flight-depth), the profiling pair (-cpuprofile, -memprofile), the
// campaign knobs (-workers, -ckpt-interval, -backend) that core.Options
// carries, and the -graph-cache cell cache selector. Binding them in one place keeps the six CLIs and cfc-serve
// presenting an identical surface, and Options() hands the parsed result
// straight to any campaign entry point that embeds core.Options.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/comp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// App is the shared CLI surface. Zero value is ready to bind; set Workers
// or CkptInterval first to change a tool's flag defaults (cfc-inject
// defaults -ckpt-interval to -1, everything else to 0).
//
// Usage mirrors obs.CLI, which App embeds: BindFlags before flag.Parse,
// Open after it, Close on the way out.
type App struct {
	obs.CLI

	// Workers is the parsed -workers value (0 = GOMAXPROCS).
	Workers int
	// CkptInterval is the parsed -ckpt-interval value (0 full replay,
	// -1 auto-sized checkpoints, >0 explicit step interval).
	CkptInterval int64
	// SampleOffset is the parsed -sample-offset value: the campaign's
	// first global sample index, for manual sharding (shard k of a split
	// campaign derives the same per-sample faults it would have in the
	// unsharded run; inject.MergeReports reassembles the shards).
	SampleOffset int
	// CPUProfile / MemProfile are the parsed pprof output paths; empty
	// disables the respective profile.
	CPUProfile string
	MemProfile string
	// Backend is the parsed -backend value; Open validates it. Empty is
	// "auto" (the block-compiled engine — every backend is byte-identical,
	// only wall-clock changes).
	Backend string
	// Progress is the parsed -progress interval. Non-zero starts a stderr
	// ticker printing live campaign progress (done/total, throughput, ETA,
	// outcome tallies); the tracker never feeds back into campaigns, so
	// results stay byte-identical.
	Progress time.Duration
	// Flight / FlightDepth are the parsed -flight output path and ring
	// depth. A non-empty path arms the per-sample flight recorder: every
	// anomalous outcome (SDC, hang) dumps its last FlightDepth events as
	// one JSONL line.
	Flight      string
	FlightDepth int
	// GraphCache is the parsed -graph-cache value: "off" (or empty)
	// disables the campaign cell cache, "on" keeps it in memory only,
	// anything else is a directory entries persist under. Tools that want
	// a different default (cfc-serve follows -cache-dir) rewrite the
	// field between flag.Parse and Open.
	GraphCache string

	backend  comp.Backend
	graph    *graph.Cache
	cpuFile  *os.File
	progress *obs.Progress
	flight   *obs.FlightRecorder
	tickStop chan struct{}
	tickDone chan struct{}
}

// BindFlags registers the shared flags on fs, using the current field
// values as defaults.
func (a *App) BindFlags(fs *flag.FlagSet) {
	a.CLI.BindFlags(fs)
	fs.IntVar(&a.Workers, "workers", a.Workers, "worker goroutines (0 = GOMAXPROCS)")
	fs.Int64Var(&a.CkptInterval, "ckpt-interval", a.CkptInterval,
		"checkpoint interval in steps (-1 auto, 0 full replay)")
	fs.IntVar(&a.SampleOffset, "sample-offset", a.SampleOffset,
		"first global sample index of this campaign shard (manual fan-out; merge shards with matching seeds)")
	fs.StringVar(&a.CPUProfile, "cpuprofile", a.CPUProfile, "write a pprof CPU profile to `file`")
	fs.StringVar(&a.MemProfile, "memprofile", a.MemProfile, "write a pprof heap profile to `file` on exit")
	if a.Backend == "" {
		a.Backend = comp.BackendAuto.String()
	}
	fs.StringVar(&a.Backend, "backend", a.Backend,
		"execution backend: auto, step, plan or compile (all byte-identical)")
	fs.DurationVar(&a.Progress, "progress", a.Progress,
		"print live campaign progress to stderr every `interval` (0 = off)")
	fs.StringVar(&a.Flight, "flight", a.Flight,
		"write per-sample flight-recorder dumps (JSONL) for anomalous outcomes to `file`")
	if a.FlightDepth == 0 {
		a.FlightDepth = obs.DefaultFlightDepth
	}
	fs.IntVar(&a.FlightDepth, "flight-depth", a.FlightDepth,
		"flight-recorder ring depth: last `n` events kept per dumped sample")
	if a.GraphCache == "" {
		a.GraphCache = "off"
	}
	fs.StringVar(&a.GraphCache, "graph-cache", a.GraphCache,
		"campaign cell cache: off, on (memory only) or a `directory` to persist under")
}

// Open materializes the observability sinks, starts the progress ticker
// and, when -cpuprofile was given, starts CPU profiling. It shadows the
// embedded obs.CLI.Open so every tool picks the whole surface up for
// free.
func (a *App) Open() error {
	b, err := comp.ParseBackend(a.Backend)
	if err != nil {
		return err
	}
	a.backend = b
	switch a.GraphCache {
	case "", "off":
		a.graph = nil
	case "on":
		a.graph = graph.New("")
	default:
		a.graph = graph.New(a.GraphCache)
	}
	if err := a.CLI.Open(); err != nil {
		return err
	}
	// Callers that fatal on an Open error never reach Close, so every
	// error path below tears down whatever already opened.
	fail := func(err error) error {
		if a.cpuFile != nil {
			pprof.StopCPUProfile()
			a.cpuFile.Close()
			a.cpuFile = nil
		}
		if a.flight != nil {
			a.flight.Close()
			a.flight = nil
		}
		a.CLI.Close()
		return err
	}
	if a.CPUProfile != "" {
		f, err := os.Create(a.CPUProfile)
		if err != nil {
			return fail(fmt.Errorf("open cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("start cpuprofile: %w", err))
		}
		a.cpuFile = f
	}
	if a.Flight != "" {
		f, err := os.Create(a.Flight)
		if err != nil {
			return fail(fmt.Errorf("open flight: %w", err))
		}
		a.flight = obs.NewFlightRecorder(f, a.FlightDepth)
	}
	// The ticker starts after the last fallible step, so Open never
	// returns an error with the goroutine still running.
	if a.Progress > 0 {
		a.progress = obs.NewProgress()
		a.tickStop = make(chan struct{})
		a.tickDone = make(chan struct{})
		go a.tick()
	}
	return nil
}

// tick prints the progress line at the configured interval until Close.
func (a *App) tick() {
	defer close(a.tickDone)
	t := time.NewTicker(a.Progress)
	defer t.Stop()
	for {
		select {
		case <-a.tickStop:
			return
		case <-t.C:
			if s := a.progress.Snapshot(); s.Total > 0 {
				fmt.Fprintf(os.Stderr, "progress: %s\n", s)
			}
		}
	}
}

// Close stops the progress ticker (printing a final line), closes the
// flight recorder, stops the CPU profile, writes the heap profile if
// requested, and flushes the observability sinks.
func (a *App) Close() error {
	var first error
	if a.tickStop != nil {
		close(a.tickStop)
		<-a.tickDone
		a.tickStop, a.tickDone = nil, nil
		if s := a.progress.Snapshot(); s.Total > 0 {
			fmt.Fprintf(os.Stderr, "progress: %s\n", s)
		}
	}
	if a.flight != nil {
		if n := a.flight.Dumps(); n > 0 {
			fmt.Fprintf(os.Stderr, "flight: %d anomalous sample(s) dumped to %s\n", n, a.Flight)
		}
		if err := a.flight.Close(); err != nil && first == nil {
			first = fmt.Errorf("flight: %w", err)
		}
		a.flight = nil
	}
	if a.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := a.cpuFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("cpuprofile: %w", err)
		}
		a.cpuFile = nil
	}
	if a.MemProfile != "" {
		f, err := os.Create(a.MemProfile)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("open memprofile: %w", err)
			}
		} else {
			runtime.GC() // settle live-heap accounting before the snapshot
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil && first == nil {
				first = fmt.Errorf("memprofile: %w", err)
			}
		}
	}
	if err := a.CLI.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Graph returns the campaign cell cache -graph-cache selected, nil when
// disabled. Call after Open.
func (a *App) Graph() *graph.Cache { return a.graph }

// Options returns the parsed execution surface. Call after Open: the
// tracer, registry, progress tracker and flight recorder are nil until
// then.
func (a *App) Options() core.Options {
	return core.Options{
		Trace:        a.Tracer(),
		Metrics:      a.Registry(),
		Workers:      a.Workers,
		CkptInterval: a.CkptInterval,
		Backend:      a.backend,
		Progress:     a.progress,
		Flight:       a.flight,
	}
}
