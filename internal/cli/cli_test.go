package cli

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// A failed Open must not leave sinks armed: callers fatal on the error
// and never reach Close, so the flight recorder, CPU profile and the
// progress ticker all have to be torn down on the error path.
func TestOpenFailureTearsDownSinks(t *testing.T) {
	dir := t.TempDir()
	a := &App{Backend: "auto"}
	a.CPUProfile = filepath.Join(dir, "missing", "cpu.prof") // create fails
	a.Flight = filepath.Join(dir, "flight.jsonl")
	a.Progress = time.Millisecond

	if err := a.Open(); err == nil {
		t.Fatal("Open succeeded with an uncreatable -cpuprofile path")
	}
	if a.cpuFile != nil || a.flight != nil || a.tickStop != nil {
		t.Errorf("sinks survived the failed Open: cpuFile=%v flight=%v tickStop=%v",
			a.cpuFile, a.flight, a.tickStop)
	}

	// The flight path is created before the cpuprofile failure only when
	// flight setup runs first; with the fallible steps ordered, a failed
	// cpuprofile leaves no armed recorder either way.
	b := &App{Backend: "auto"}
	b.Flight = filepath.Join(dir, "missing", "flight.jsonl") // create fails
	b.CPUProfile = filepath.Join(dir, "cpu.prof")
	b.Progress = time.Millisecond
	if err := b.Open(); err == nil {
		t.Fatal("Open succeeded with an uncreatable -flight path")
	}
	if b.cpuFile != nil || b.flight != nil || b.tickStop != nil {
		t.Errorf("sinks survived the failed Open: cpuFile=%v flight=%v tickStop=%v",
			b.cpuFile, b.flight, b.tickStop)
	}
	// The successfully created cpu profile file was closed by the
	// teardown; profiling is no longer running, so a fresh profile can
	// start (pprof allows one at a time).
	if _, err := os.Stat(b.CPUProfile); err != nil {
		t.Errorf("cpu profile file: %v", err)
	}
	c := &App{Backend: "auto"}
	c.CPUProfile = filepath.Join(dir, "cpu2.prof")
	if err := c.Open(); err != nil {
		t.Fatalf("profiling still active after failed Open: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}
