package repro_test

// End-to-end integration: the full path a downstream user takes — write
// assembly, produce a binary image, load it back (the "existing binary"),
// run it natively, run it transparently protected under the translator,
// inject a fault, and confirm detection — all through the public facade.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
)

const integrationSrc = `
; checksum over a small table, branchy enough to be interesting
.data 128
main:
    movi eax, 0
    movi ecx, 16
fill:
    movi esi, 100
    lea3 edx, [esi+ecx+0]
    store [edx], ecx
    subi ecx, 1
    cmpi ecx, 0
    jgt fill
    movi ecx, 16
sum:
    movi esi, 100
    lea3 edx, [esi+ecx+0]
    load ebx, [edx]
    add eax, ebx
    cmpi eax, 100
    jlt nofold
    subi eax, 97
nofold:
    subi ecx, 1
    cmpi ecx, 0
    jgt sum
    call finish
    halt
finish:
    out eax
    ret
`

func TestEndToEndBinaryLifecycle(t *testing.T) {
	// Assemble and serialize to the flat binary format.
	p, err := core.Assemble("integration", integrationSrc)
	if err != nil {
		t.Fatal(err)
	}
	img := p.Image()

	// Load it back as an opaque "existing binary".
	loaded, err := isa.LoadImage("reloaded", img, p.Entry, p.DataWords)
	if err != nil {
		t.Fatal(err)
	}

	// Native reference run.
	nat := core.RunNative(loaded, 10_000_000)
	if nat.Stop.Reason != cpu.StopHalt || len(nat.Output) != 1 {
		t.Fatalf("native: %v %v", nat.Stop, nat.Output)
	}

	// Transparent protection: every technique/style/policy combination
	// must reproduce the native behavior bit for bit.
	for _, tech := range []string{"none", "ECF", "EdgCF", "RCF"} {
		for _, style := range []string{"Jcc", "CMOVcc"} {
			for _, pol := range []string{"ALLBB", "RET-BE", "RET", "END"} {
				res, err := core.RunDBT(loaded, core.Config{Technique: tech, Style: style, Policy: pol}, 10_000_000)
				if err != nil {
					t.Fatal(err)
				}
				if res.Stop.Reason != cpu.StopHalt || len(res.Output) != 1 || res.Output[0] != nat.Output[0] {
					t.Errorf("%s/%s/%s: stop=%v output=%v want %v",
						tech, style, pol, res.Stop, res.Output, nat.Output)
				}
			}
		}
	}

	// Error model over the same binary.
	tab, err := core.AnalyzeErrors(loaded, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Total == 0 || tab.Branches == 0 {
		t.Error("error model found nothing")
	}

	// Injection campaign under full protection: no silent corruption.
	rep, err := core.Inject(loaded, core.Config{Technique: "RCF", Style: "CMOVcc"}, 250, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Total == 0 {
		t.Fatal("no faults fired")
	}
	if got := rep.Totals.Coverage(); got < 0.97 {
		t.Errorf("RCF end-to-end coverage = %.3f, want >= 0.97", got)
	}

	// The formal layer agrees with the empirical one.
	res, err := core.VerifyScheme("RCF")
	if err != nil || !res.Sufficient || !res.Necessary {
		t.Errorf("formal verification of RCF failed: %+v, %v", res, err)
	}
}
