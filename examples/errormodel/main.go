// Errormodel: walk the paper's Section 2 classification on a small,
// readable program. Every executed direct branch contributes one fault
// site per offset bit and (when conditional) per flag bit; each site is
// classified into categories A-F or "no error". The example prints the
// per-program Figure 2-style table, then drills into a single branch to
// show exactly where each bit flip would land.
package main

import (
	"fmt"
	"log"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/isa"
)

const src = `
; two-block loop plus a cold helper, small enough to study by hand
main:
    movi eax, 0
    movi ecx, 6
loop:
    add eax, ecx
    cmpi eax, 100
    jlt small
    subi eax, 50
small:
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax
    halt
helper:
    addi eax, 1
    ret
`

func main() {
	p, err := core.Assemble("errormodel", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(core.Disassemble(p))
	fmt.Println()

	tab, err := core.AnalyzeErrors(p, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(errmodel.FormatFigure2("Branch-error probabilities (this program)", tab))
	fmt.Println()
	fmt.Print(errmodel.FormatFigure3("Normalized over A-E", tab))
	fmt.Println()

	// Drill into the loop's back edge: enumerate the first 8 offset-bit
	// flips and classify each landing site.
	g := cfg.Build(p)
	var branchIP uint32
	for addr, in := range p.Code {
		if in.Op == isa.OpJcc && in.Target(uint32(addr)) < uint32(addr) {
			branchIP = uint32(addr) // the backward jgt
		}
	}
	in := p.Code[branchIP]
	fmt.Printf("back edge at 0x%x (%s), correct target 0x%x:\n", branchIP, in, in.Target(branchIP))
	for bit := 0; bit < 8; bit++ {
		tgt := branchIP + 1 + uint32(in.Imm^(1<<bit))
		cat := errmodel.Classify(g, branchIP, tgt)
		where := "outside code"
		if b := g.BlockAt(tgt); b != nil {
			where = fmt.Sprintf("block [0x%x,0x%x)", b.Start, b.End)
		}
		fmt.Printf("  flip offset bit %d -> 0x%06x  category %-2s (%s)\n", bit, tgt, cat, where)
	}
}
