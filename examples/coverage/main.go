// Coverage: run randomized soft-error injection campaigns against one
// benchmark under every protection configuration — no protection, the
// prior techniques (ECF as translator instrumentation, CFCSS and ECCA as
// static rewriters) and the paper's EdgCF and RCF — and compare how many
// errors each detects per branch-error category.
//
// This is the experiment the paper argues analytically in Section 3 and
// defers to future work; expect RCF to leave no silent corruptions while
// the baselines each miss their documented categories.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/inject"

	"repro/internal/check"
)

func main() {
	const (
		workload = "181.mcf"
		scale    = 0.08
		samples  = 400
		seed     = 7
	)
	p, err := core.Workload(workload, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injection campaigns on %s (%d samples each)\n\n", workload, samples)

	// Translator-hosted techniques.
	for _, tech := range []string{"none", "ECF", "EdgCF", "RCF"} {
		rep, err := core.Inject(p, core.Config{Technique: tech, Style: "CMOVcc"}, samples, seed, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(inject.FormatReport(rep))
		fmt.Println()
	}

	// Static baselines (whole-program rewriters; the paper's DBT cannot
	// host them because translation on demand invalidates their static
	// signature assignment).
	for _, kind := range []check.StaticKind{check.StaticCFCSS, check.StaticECCA} {
		ip, err := check.InstrumentStatic(p, kind)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := inject.Execute(context.Background(), ip, inject.Config{Samples: samples, Seed: seed},
			inject.AsStatic(kind.String()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(inject.FormatReport(rep))
		fmt.Println()
	}
}
