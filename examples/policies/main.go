// Policies: quantify the trade the paper's Section 6 makes explicit —
// checking the signature less often is faster, but errors are reported
// later (and, under END, looping errors may never be reported at all).
// For one benchmark, measure slowdown and mean detection latency for the
// four checking policies.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/inject"
)

func main() {
	const (
		workload = "197.parser"
		scale    = 0.1
		samples  = 300
	)
	p, err := core.Workload(workload, scale)
	if err != nil {
		log.Fatal(err)
	}
	base, err := core.RunDBT(p, core.Config{}, 2_000_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("RCF on %s: checking policy trade-off\n", workload)
	fmt.Printf("%-8s %10s %12s %14s %8s\n", "policy", "slowdown", "coverage", "mean-latency", "hangs")
	for _, pol := range []string{"ALLBB", "RET-BE", "RET", "END"} {
		cfg := core.Config{Technique: "RCF", Style: "Jcc", Policy: pol}
		res, err := core.RunDBT(p, cfg, 2_000_000_000)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := core.Inject(p, cfg, samples, 13, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %9.2fx %11.1f%% %9.0f instr %8d\n",
			pol,
			float64(res.Cycles)/float64(base.Cycles),
			rep.Totals.Coverage()*100,
			rep.MeanLatency(),
			rep.Totals.Count[inject.OutHang],
		)
	}
	fmt.Println("\nNote: signature updates run in every block under every policy; only the")
	fmt.Println("checks move. Once wrong, the signature stays wrong, so sparse checks still")
	fmt.Println("catch the error eventually — unless it loops forever (the END policy's gap).")
}
