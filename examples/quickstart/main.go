// Quickstart: assemble a tiny guest program, run it natively, run it under
// the dynamic binary translator with the RCF control-flow checking
// technique, then flip one bit in a branch's condition flags mid-run and
// watch the instrumentation catch the mistaken branch.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbt"

	"repro/internal/check"
)

const src = `
; sum the integers 1..10 and print the result
main:
    movi eax, 0
    movi ecx, 10
loop:
    add eax, ecx
    subi ecx, 1
    cmpi ecx, 0
    jgt loop
    out eax
    halt
`

func main() {
	p, err := core.Assemble("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.Disassemble(p))

	// 1. Native run.
	nat := core.RunNative(p, 1_000_000)
	fmt.Printf("native: %v, output=%v, %d cycles\n", nat.Stop, nat.Output, nat.Cycles)

	// 2. The same binary under the translator, transparently protected.
	res, err := core.RunDBT(p, core.Config{Technique: "RCF", Style: "CMOVcc"}, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dbt+RCF: %v, output=%v, %d cycles (%.2fx native)\n",
		res.Stop, res.Output, res.Cycles, float64(res.Cycles)/float64(nat.Cycles))

	// 3. Inject a soft error: flip the zero flag right before a branch
	//    evaluates, searching for an execution where the flip reverses the
	//    direction — a mistaken branch (category A in the paper's
	//    classification).
	d := dbt.New(p, dbt.Options{Technique: &check.RCF{Style: dbt.UpdateCmov}})
	var fault *cpu.Fault
	var fres *dbt.Result
	for idx := uint64(0); ; idx++ {
		fault = &cpu.Fault{BranchIndex: idx, Kind: cpu.FaultFlagBit, Bit: 2 /* FlagZ */}
		fres = d.Run(fault, 1_000_000)
		if !fault.Fired {
			log.Fatal("no direction-flipping fault found")
		}
		if fault.CleanTaken != fault.FaultTaken {
			break
		}
	}
	fmt.Printf("\ninjected: flip Z flag at dynamic branch #%d\n", fault.BranchIndex)
	fmt.Printf("  fault fired at cache ip 0x%x: clean direction taken=%v, faulty taken=%v\n",
		fault.FaultIP, fault.CleanTaken, fault.FaultTaken)
	fmt.Printf("  run ended with: %v\n", fres.Stop)
	switch fres.Stop.Reason {
	case cpu.StopReport:
		fmt.Println("  -> the signature check DETECTED the control-flow error")
	case cpu.StopHalt:
		fmt.Printf("  -> completed; output %v (clean output %v)\n", fres.Output, nat.Output)
	default:
		fmt.Println("  -> hardware trap caught the stray control flow")
	}
}
