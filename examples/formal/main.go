// Formal: walk the Section 4 framework by hand. Build a small control-flow
// graph, split every block into head and tail (Figure 10), run the
// exhaustive single-error model checker against each published scheme, and
// print the machine-found counterexample executions — the same categories
// of misses the paper derives analytically in Section 3.
package main

import (
	"fmt"

	"repro/internal/sig"
)

func main() {
	// A loop nest with a diamond: 0 -> 1; 1 -> {2,3}; 2 -> 4; 3 -> 4;
	// 4 -> {1, 5}; 5 exit.
	g := &sig.Graph{Succs: [][]sig.BlockID{
		{1}, {2, 3}, {4}, {4}, {1, 5}, {},
	}}

	fmt.Println("graph: 0->1; 1->{2,3}; 2->4; 3->4; 4->{1,5}; 5 exit")
	fmt.Println("every block split into head/tail; all executions with <=1 control-flow error explored")
	fmt.Println()

	schemes := []sig.Scheme{
		sig.EdgCF{},
		sig.RCF{},
		sig.ECF{},
		sig.NewCFCSS(g),
		sig.NewECCA(g),
	}
	for _, s := range schemes {
		res := sig.Verify(g, s)
		verdict := "PROVEN comprehensive (sufficient + necessary hold)"
		if !res.Sufficient {
			verdict = "fails the sufficient condition: some single error escapes"
		}
		if !res.Necessary {
			verdict = "fails the necessary condition: false positives!"
		}
		fmt.Printf("%-6s — %s  [%d states]\n", res.Scheme, verdict, res.StatesExplored)
		for _, ev := range res.FalseNegative {
			fmt.Printf("         %s\n", ev)
		}
	}
	fmt.Println()
	fmt.Println("Reading the witnesses: ECF's escape lands on the tail of the block it")
	fmt.Println("left (category C, a jump into the middle of the same block); CFCSS and")
	fmt.Println("ECCA accept a wrong-but-legal successor (category A, mistaken branch).")
}
