// Package repro reproduces Borin, Wang, Wu and Araujo, "Software-Based
// Transparent and Comprehensive Control-Flow Error Detection" (CGO 2006)
// as a self-contained Go library: a simulated IA32-flavoured guest ISA and
// assembler, a dynamic binary translator with a calibrated cycle cost
// model, the EdgCF and RCF checking techniques plus the ECF/CFCSS/ECCA
// baselines, the paper's single-bit-flip error model, fault-injection
// campaigns, and a 26-program synthetic SPEC2000 workload suite.
//
// Start with internal/core (the facade), the cmd/ tools, or the runnable
// examples under examples/. DESIGN.md maps every paper artifact to the
// module that reproduces it; EXPERIMENTS.md records paper-vs-measured
// results for every table and figure.
package repro
