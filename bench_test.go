package repro_test

// One benchmark per paper artifact: running `go test -bench=. -benchmem`
// regenerates every table and figure at a reduced scale and reports the
// headline numbers as benchmark metrics (geomean slowdowns, coverage,
// overhead percentages). The cmd/cfc-bench, cmd/cfc-errmodel and
// cmd/cfc-inject tools print the full tables at scale 1.0.

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/errmodel"
	"repro/internal/inject"
)

// benchScale keeps a full -bench=. run in the tens of seconds.
const benchScale = 0.2

// BenchmarkFigure2ErrorModel regenerates the Figure 2 fault-site tables
// for both suites and reports the headline category probabilities.
func BenchmarkFigure2ErrorModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		intTab, fpTab, err := bench.Figure2(benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(intTab.CategoryProb(errmodel.CatF)*100, "int-F-%")
		b.ReportMetric(fpTab.CategoryProb(errmodel.CatF)*100, "fp-F-%")
	}
}

// BenchmarkFigure3Normalized regenerates the normalized A-E distribution.
func BenchmarkFigure3Normalized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		intTab, fpTab, err := bench.Figure2(benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(intTab.Normalized()[errmodel.CatE]*100, "int-E-%")
		b.ReportMetric(fpTab.Normalized()[errmodel.CatC]*100, "fp-C-%")
	}
}

// BenchmarkFigure12Slowdown regenerates the per-benchmark slowdowns of
// RCF/EdgCF/ECF and reports the suite geomeans.
func BenchmarkFigure12Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure12(benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.GeoAll[0], "RCF-geomean")
		b.ReportMetric(t.GeoAll[1], "EdgCF-geomean")
		b.ReportMetric(t.GeoAll[2], "ECF-geomean")
	}
}

// BenchmarkFigure14UpdateStyle regenerates the Jcc vs CMOVcc table.
func BenchmarkFigure14UpdateStyle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure14(benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Slowdown[0][0], "RCF-Jcc")
		b.ReportMetric(t.Slowdown[1][0], "RCF-CMOVcc")
	}
}

// BenchmarkFigure15Policies regenerates the checking-policy sweep for RCF.
func BenchmarkFigure15Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Figure15(benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.GeoAll[0], "ALLBB")
		b.ReportMetric(t.GeoAll[1], "RET-BE")
		b.ReportMetric(t.GeoAll[3], "END")
	}
}

// BenchmarkDBTBaseline measures the uninstrumented translator against
// native execution (the paper's ~12%).
func BenchmarkDBTBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, avg, err := bench.DBTBaseline(benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avg*100, "overhead-%")
	}
}

// BenchmarkCoverageCampaign runs the fault-injection coverage matrix (the
// paper's Section 3 claims, measured).
func BenchmarkCoverageCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, err := bench.CoverageMatrix(context.Background(), bench.CoverageConfig{
			Scale:   0.05,
			Samples: 150,
			Seed:    1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reports {
			if r.Technique == "RCF" {
				b.ReportMetric(r.Totals.Coverage()*100, "RCF-coverage-%")
			}
			if r.Technique == "none" {
				b.ReportMetric(float64(r.Totals.Count[inject.OutSDC]), "none-SDCs")
			}
		}
	}
}

// BenchmarkAblations measures the design choices DESIGN.md calls out:
// chaining, traces, xor-vs-lea updates, and data-flow checking stacking.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Ablations(benchScale, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Name {
			case "no-chaining", "EdgCF-xor+pushf", "RCF+DFC":
				b.ReportMetric(r.Slowdown, r.Name)
			}
		}
	}
}

// BenchmarkDataFlowCoverage runs the register-fault campaigns that the
// data-flow checking transform (the paper's future work) targets.
func BenchmarkDataFlowCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, err := bench.DataFlowCoverage(0.04, 120, 1, 0, -1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reports {
			if r.Technique == "RCF+DFC" {
				b.ReportMetric(r.Totals.Coverage()*100, "RCF+DFC-coverage-%")
			}
		}
	}
}

// BenchmarkNativeInterpreter reports raw interpreter speed, the substrate
// cost underneath every experiment.
func BenchmarkNativeInterpreter(b *testing.B) {
	p, err := core.Workload("183.equake", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		res := core.RunNative(p, bench.DefaultMaxSteps)
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.N), "guest-instrs/op")
}
